(** Harris lock-free linked list (DISC '01) — "harris" in Figure 9.

    Harris marks the least-significant bit of a node's [next] pointer to
    signal logical deletion, making delete a two-CAS protocol (mark, then
    unlink) and letting traversals help unlink marked nodes. OCaml cannot
    steal pointer bits, so a [next] field holds an immutable {!link}
    record carrying the destination and the mark; compare-and-swap
    operates on the physical identity of the link record, preserving the
    single-CAS semantics of each step. This is the standard encoding for
    GC'd languages and is noted as a substitution in DESIGN.md. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v link = { dest : 'v node; marked : bool }
  and 'v node = { key : int; value : 'v; next : 'v link option Rt.atomic }

  type 'v t = { head : 'v node; qsbr : 'v node Q.t }

  let name = "ll-harris"

  let restarts = Rt.Probe.counter "ll-harris.restarts"

  let mk_node key value next =
    Rt.Probe.with_site "ll-harris.node" (fun () ->
        { key; value; next = Rt.atomic next })

  let create ?capacity:_ () =
    let tail = mk_node max_int (Obj.magic 0) None in
    let head = mk_node min_int (Obj.magic 0) (Some { dest = tail; marked = false }) in
    { head; qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "ll: key out of range"

  (* Wait-free-style search: traverse ignoring (but not helping) marked
     nodes; a key is present iff its node's own next link is unmarked. *)
  let search t key =
    check_key key;
    Q.op_begin t.qsbr;
    let cur = ref t.head in
    while !cur.key < key do
      match Rt.get !cur.next with
      | Some l -> cur := l.dest
      | None -> invalid_arg "ll: traversed past the tail sentinel"
    done;
    let res =
      if !cur.key = key then
        match Rt.get !cur.next with
        | Some l when not l.marked -> Some !cur.value
        | _ -> None
      else None
    in
    Q.op_end t.qsbr;
    res

  (* Find predecessor and current node for [key], snipping out marked
     nodes on the way (the helping that keeps the list clean). Returns
     [(pred, pread, cur)] where [pread] is the {e physical} option value
     read from [pred.next] (the CAS witness — compare-and-swap is on
     physical identity) and [cur] its destination. *)
  let rec find_b b t key =
    (* Note: [walk] threads the physically-read link records through, so
       a predecessor that gets marked after we stepped onto it simply
       fails the eventual CAS (the mark replaced the record) — unlike a
       re-reading find, no marked-witness check is needed here. *)
    let rec walk pred pread plink =
      let cur = plink.dest in
      if cur.key = max_int then (pred, pread, cur)
      else
        let cread = Rt.get cur.next in
        match cread with
        | None -> (pred, pread, cur)
        | Some clink ->
            if clink.marked then (
              (* Help unlink the logically deleted [cur]. *)
              let nread = Some { dest = clink.dest; marked = false } in
              if Rt.cas pred.next pread nread then (
                Q.retire t.qsbr cur;
                match nread with
                | Some nlink -> walk pred nread nlink
                | None -> assert false)
              else (
                (* lost a snip race: back off before re-walking *)
                Rt.Probe.incr restarts;
                B.once b;
                find_b b t key))
            else if cur.key >= key then (pred, pread, cur)
            else walk cur cread clink
    in
    let hread = Rt.get t.head.next in
    match hread with
    | Some plink -> walk t.head hread plink
    | None -> invalid_arg "ll: empty head"

  let find t key = find_b (B.create ()) t key

  let insert t key value =
    check_key key;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let pred, pread, cur = find t key in
      if cur.key = key then false
      else
        let newnode = mk_node key value (Some { dest = cur; marked = false }) in
        if Rt.cas pred.next pread (Some { dest = newnode; marked = false })
        then true
        else (
          Rt.Probe.incr restarts;
          B.once b;
          attempt ())
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let delete t key =
    check_key key;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let pred, pread, cur = find t key in
      if cur.key <> key then None
      else
        let cread = Rt.get cur.next in
        match cread with
        | None -> None
        | Some clink ->
            if clink.marked then (
              (* Concurrently deleted; retry until [find] stops seeing it. *)
              Rt.Probe.incr restarts;
              B.once b;
              attempt ())
            else if
              (* Logical delete: mark [cur]'s next link. *)
              Rt.cas cur.next cread (Some { dest = clink.dest; marked = true })
            then (
              (* Physical delete: best-effort unlink; [find] helps later
                 otherwise (and performs the retire). *)
              if Rt.cas pred.next pread (Some { dest = clink.dest; marked = false })
              then Q.retire t.qsbr cur
              else ignore (find t key);
              Some cur.value)
            else (
              Rt.Probe.incr restarts;
              B.once b;
              attempt ())
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let size t =
    let n = ref 0 in
    let rec go node =
      match Rt.get node.next with
      | None -> ()
      | Some l ->
          if (not l.marked) && l.dest.key < max_int then (
            (* count [l.dest] unless its own link is marked *)
            match Rt.get l.dest.next with
            | Some l' when not l'.marked -> incr n
            | Some _ -> ()
            | None -> ());
          go l.dest
    in
    go t.head;
    !n

  let fold t f acc =
    let rec go acc node =
      match Rt.get node.next with
      | None -> acc
      | Some l ->
          let acc =
            if (not l.marked) && l.dest.key < max_int then
              (* yield [l.dest] unless its own link is marked *)
              match Rt.get l.dest.next with
              | Some l' when not l'.marked -> f l.dest.key l.dest.value acc
              | _ -> acc
            else acc
          in
          go acc l.dest
    in
    go acc t.head

  let validate t =
    let ok = ref true in
    let rec go node =
      match Rt.get node.next with
      | None -> if node.key <> max_int then ok := false
      | Some l ->
          if l.marked then ok := false (* no marked nodes when quiescent *);
          if l.dest.key <= node.key then ok := false;
          go l.dest
    in
    go t.head;
    !ok
end
