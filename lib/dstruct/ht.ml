(** Concurrent hash tables (§5.2 of the paper).

    {!Of_bucket} builds a hash table from any bucket implementation —
    this yields "optik-gl" (per-bucket global-lock OPTIK lists), "optik"
    (fine-grained OPTIK lists), "lazy-gl" (per-bucket pessimistic lists)
    and "optik-map" (per-bucket OPTIK array maps), exactly the four
    list/map-based tables of the evaluation.

    {!Java} is a ConcurrentHashMap-style striped table (lock per segment,
    unsorted per-bucket chains, updates lock the segment regardless of
    feasibility — the behaviour §5.2 calls out as hindering scalability).
    {!Java_optik} is the paper's OPTIK optimization: updates first
    traverse read-only and return [false] without locking when
    infeasible; feasible updates validate the traversal with
    [lock_version] and — when the version is unchanged — commit directly,
    {e skipping the second bucket traversal}. *)

module type RT = Rt.Rt_intf.RT

(* Fibonacci hashing spreads the benchmark's dense integer keys. *)
let hash k = (k * 0x2545F4914F6CDD1D) land max_int

module type BUCKET = sig
  type 'v t

  val create : unit -> 'v t
  val search : 'v t -> int -> 'v option
  val insert : 'v t -> int -> 'v -> bool
  val delete : 'v t -> int -> 'v option
  val fold : 'v t -> (int -> 'v -> 'a -> 'a) -> 'a -> 'a
  val size : 'v t -> int
  val validate : 'v t -> bool
end

let default_buckets = 1024

module Of_bucket (B : BUCKET) = struct
  type 'v t = { buckets : 'v B.t array; nb : int }

  let create ?(capacity = default_buckets) () =
    let capacity = max 1 capacity in
    { buckets = Array.init capacity (fun _ -> B.create ()); nb = capacity }

  let bucket t key = t.buckets.(hash key mod t.nb)

  let search t key = B.search (bucket t key) key
  let insert t key v = B.insert (bucket t key) key v
  let delete t key = B.delete (bucket t key) key

  let size t = Array.fold_left (fun acc b -> acc + B.size b) 0 t.buckets

  let fold t f acc = Array.fold_left (fun acc b -> B.fold b f acc) acc t.buckets

  let validate t = Array.for_all B.validate t.buckets
end

(* --------------------------------------------------------------- *)

let default_segments = 128 (* as configured in §5.2, per Java's docs *)

(** ConcurrentHashMap-style striped table with {e per-segment resizing}
    (§5.2: "Each segment (and its buckets) is protected by a single lock
    and can be individually resized"). Each segment owns its bucket
    array behind one atomic pointer; when a segment's load factor
    crosses {!resize_load_factor}, the updating thread — already holding
    the segment lock — rebuilds the segment into a doubled array of
    {e fresh} nodes and publishes it with a single store. Searches
    anchor on their read of the array pointer: a reader still traversing
    the old array linearizes before the resize, which is sound because
    the old chains are immutable once unpublished. *)
module Java (Rt : RT) = struct
  module Lock = Locks.Ttas (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v node = { key : int; value : 'v; next : 'v node option Rt.atomic }

  type 'v seg = {
    lock : Lock.t;
    buckets : 'v node option Rt.atomic array Rt.atomic;
    count : int Rt.atomic;  (** elements in the segment; updated under lock *)
  }

  type 'v t = { segs : 'v seg array; nseg : int; qsbr : 'v node Q.t }

  let name = "ht-java"

  let resize_load_factor = 4
  let resizes = Rt.Probe.counter "ht-java.resizes"

  let create ?(capacity = default_buckets) () =
    let nseg = min default_segments (max 1 capacity) in
    let per_seg = max 1 (capacity / nseg) in
    {
      segs =
        Rt.Probe.with_site "ht-java.segment" (fun () ->
            Array.init nseg (fun _ ->
                {
                  lock = Lock.create ();
                  buckets =
                    Rt.atomic (Array.init per_seg (fun _ -> Rt.atomic None));
                  count = Rt.atomic 0;
                }));
      nseg;
      qsbr = Q.create ();
    }

  let seg_of t key = t.segs.(hash key mod t.nseg)

  (* Bucket within a segment: use the upper hash bits (the low ones chose
     the segment). *)
  let bucket_in seg_arr key = seg_arr.((hash key / 0x10000) mod Array.length seg_arr)

  (* Lock-free search: anchor on one read of the segment's bucket-array
     pointer; chains grow at the head and unlink with single stores. *)
  let search t key =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    let arr = Rt.get seg.buckets in
    let rec go = function
      | None -> None
      | Some n -> if n.key = key then Some n.value else go (Rt.get n.next)
    in
    let res = go (Rt.get (bucket_in arr key)) in
    Q.op_end t.qsbr;
    res

  (* Rebuild the segment into a doubled bucket array of fresh nodes;
     caller holds the segment lock. Old nodes are retired wholesale —
     concurrent readers may still traverse them. *)
  let resize t seg =
    Rt.Probe.incr resizes;
    let old_arr = Rt.get seg.buckets in
    let fresh =
      Rt.Probe.with_site "ht-java.bucket" (fun () ->
          Array.init (2 * Array.length old_arr) (fun _ -> Rt.atomic None))
    in
    Array.iter
      (fun bucket ->
        let rec go = function
          | None -> ()
          | Some n ->
              let cell = bucket_in fresh n.key in
              Rt.set cell
                (Some { key = n.key; value = n.value; next = Rt.atomic (Rt.get cell) });
              Q.retire t.qsbr n;
              go (Rt.get n.next)
        in
        go (Rt.get bucket))
      old_arr;
    Rt.set seg.buckets fresh

  (* Updates lock the segment up front, feasible or not — the unoptimized
     ConcurrentHashMap behaviour the paper calls out. *)
  let insert t key v =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    Lock.lock seg.lock;
    let arr = Rt.get seg.buckets in
    let cell = bucket_in arr key in
    let head = Rt.get cell in
    let rec mem = function
      | None -> false
      | Some n -> n.key = key || mem (Rt.get n.next)
    in
    let res =
      if mem head then false
      else (
        Rt.set cell
          (Some
             (Rt.Probe.with_site "ht-java.node" (fun () ->
                  { key; value = v; next = Rt.atomic head })));
        let c = Rt.get seg.count + 1 in
        Rt.set seg.count c;
        if c > resize_load_factor * Array.length arr then resize t seg;
        true)
    in
    Lock.unlock seg.lock;
    Q.op_end t.qsbr;
    res

  let delete t key =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    Lock.lock seg.lock;
    let arr = Rt.get seg.buckets in
    let cell = bucket_in arr key in
    let rec unlink prev cur =
      match cur with
      | None -> None
      | Some n ->
          if n.key = key then (
            (match prev with
            | None -> Rt.set cell (Rt.get n.next)
            | Some p -> Rt.set p.next (Rt.get n.next));
            Rt.set seg.count (Rt.get seg.count - 1);
            Q.retire t.qsbr n;
            Some n.value)
          else unlink (Some n) (Rt.get n.next)
    in
    let res = unlink None (Rt.get cell) in
    Lock.unlock seg.lock;
    Q.op_end t.qsbr;
    res

  let fold_buckets t f acc =
    Array.fold_left
      (fun acc seg ->
        Array.fold_left
          (fun acc bucket ->
            let rec go acc = function
              | None -> acc
              | Some n -> go (f acc n) (Rt.get n.next)
            in
            go acc (Rt.get bucket))
          acc (Rt.get seg.buckets))
      acc t.segs

  let size t = fold_buckets t (fun acc _ -> acc + 1) 0

  let fold t f acc = fold_buckets t (fun acc n -> f n.key n.value acc) acc

  let validate t =
    let seen = Hashtbl.create 64 in
    let ok =
      fold_buckets t
        (fun ok n ->
          let dup = Hashtbl.mem seen n.key in
          Hashtbl.replace seen n.key ();
          ok && not dup)
        true
    in
    (* per-segment counts must agree with the chains *)
    Array.for_all
      (fun seg ->
        let c = ref 0 in
        Array.iter
          (fun bucket ->
            let rec go = function
              | None -> ()
              | Some n ->
                  incr c;
                  go (Rt.get n.next)
            in
            go (Rt.get bucket))
          (Rt.get seg.buckets);
        !c = Rt.get seg.count)
      t.segs
    && ok
end

module Java_optik (Rt : RT) = struct
  module OL = Optik.Versioned (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v node = { key : int; value : 'v; next : 'v node option Rt.atomic }

  type 'v seg = {
    lock : OL.t;
    buckets : 'v node option Rt.atomic array Rt.atomic;
    count : int Rt.atomic;
  }

  type 'v t = { segs : 'v seg array; nseg : int; qsbr : 'v node Q.t }

  let name = "ht-java-optik"

  let resize_load_factor = 4
  let second_traversals = Rt.Probe.counter "ht-java-optik.second-traversals"
  let resizes = Rt.Probe.counter "ht-java-optik.resizes"

  let create ?(capacity = default_buckets) () =
    let nseg = min default_segments (max 1 capacity) in
    let per_seg = max 1 (capacity / nseg) in
    {
      segs =
        Rt.Probe.with_site "ht-java-optik.segment" (fun () ->
            Array.init nseg (fun _ ->
                {
                  lock = OL.create ();
                  buckets =
                    Rt.atomic (Array.init per_seg (fun _ -> Rt.atomic None));
                  count = Rt.atomic 0;
                }));
      nseg;
      qsbr = Q.create ();
    }

  let seg_of t key = t.segs.(hash key mod t.nseg)

  let bucket_in seg_arr key =
    seg_arr.((hash key / 0x10000) mod Array.length seg_arr)

  let search t key =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    let arr = Rt.get seg.buckets in
    let rec go = function
      | None -> None
      | Some n -> if n.key = key then Some n.value else go (Rt.get n.next)
    in
    let res = go (Rt.get (bucket_in arr key)) in
    Q.op_end t.qsbr;
    res

  (* Same per-segment resize as {!Java}; caller holds the segment lock,
     and the version bump on unlock invalidates any traversal that read
     the old array. *)
  let resize t seg =
    Rt.Probe.incr resizes;
    let old_arr = Rt.get seg.buckets in
    let fresh =
      Rt.Probe.with_site "ht-java-optik.bucket" (fun () ->
          Array.init (2 * Array.length old_arr) (fun _ -> Rt.atomic None))
    in
    Array.iter
      (fun bucket ->
        let rec go = function
          | None -> ()
          | Some n ->
              let cell = bucket_in fresh n.key in
              Rt.set cell
                (Some
                   { key = n.key; value = n.value; next = Rt.atomic (Rt.get cell) });
              Q.retire t.qsbr n;
              go (Rt.get n.next)
        in
        go (Rt.get bucket))
      old_arr;
    Rt.set seg.buckets fresh

  let maybe_grow t seg arr =
    let c = Rt.get seg.count + 1 in
    Rt.set seg.count c;
    if c > resize_load_factor * Array.length arr then resize t seg

  (* Read-only first traversal; infeasible updates return with no lock.
     Feasible ones validate the traversal with [lock_version]: if the
     segment version is unchanged, the bucket cell and head captured
     before locking are still current — no resize, no modification — and
     the update commits without a second traversal (§5.2). *)
  let insert t key v =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    let vn = OL.get_version seg.lock in
    let arr0 = Rt.get seg.buckets in
    let cell0 = bucket_in arr0 key in
    let head0 = Rt.get cell0 in
    let rec mem = function
      | None -> false
      | Some n -> n.key = key || mem (Rt.get n.next)
    in
    let res =
      if mem head0 then false
      else if OL.lock_version seg.lock vn then (
        (* Version validated: the segment cannot have changed. *)
        Rt.set cell0
          (Some
             (Rt.Probe.with_site "ht-java-optik.node" (fun () ->
                  { key; value = v; next = Rt.atomic head0 })));
        maybe_grow t seg arr0;
        OL.unlock seg.lock;
        true)
      else (
        (* Version moved: one more traversal under the lock. *)
        Rt.Probe.incr second_traversals;
        let arr = Rt.get seg.buckets in
        let cell = bucket_in arr key in
        let head = Rt.get cell in
        if mem head then (
          OL.revert seg.lock;
          false)
        else (
          Rt.set cell
            (Some
               (Rt.Probe.with_site "ht-java-optik.node" (fun () ->
                    { key; value = v; next = Rt.atomic head })));
          maybe_grow t seg arr;
          OL.unlock seg.lock;
          true))
    in
    Q.op_end t.qsbr;
    res

  let delete t key =
    Q.op_begin t.qsbr;
    let seg = seg_of t key in
    let vn = OL.get_version seg.lock in
    let arr0 = Rt.get seg.buckets in
    let cell0 = bucket_in arr0 key in
    (* First pass: find predecessor and victim without locking. *)
    let rec locate prev cur =
      match cur with
      | None -> None
      | Some n ->
          if n.key = key then Some (prev, n) else locate (Some n) (Rt.get n.next)
    in
    let commit cell prev victim =
      (match prev with
      | None -> Rt.set cell (Rt.get victim.next)
      | Some p -> Rt.set p.next (Rt.get victim.next));
      Rt.set seg.count (Rt.get seg.count - 1);
      OL.unlock seg.lock;
      Q.retire t.qsbr victim;
      Some victim.value
    in
    let res =
      match locate None (Rt.get cell0) with
      | None -> None
      | Some (prev, victim) ->
          if OL.lock_version seg.lock vn then
            (* Unchanged segment: the recorded position is still valid. *)
            commit cell0 prev victim
          else (
            Rt.Probe.incr second_traversals;
            let arr = Rt.get seg.buckets in
            let cell = bucket_in arr key in
            match locate None (Rt.get cell) with
            | None ->
                OL.revert seg.lock;
                None
            | Some (prev, victim) -> commit cell prev victim)
    in
    Q.op_end t.qsbr;
    res

  let fold_buckets t f acc =
    Array.fold_left
      (fun acc seg ->
        Array.fold_left
          (fun acc bucket ->
            let rec go acc = function
              | None -> acc
              | Some n -> go (f acc n) (Rt.get n.next)
            in
            go acc (Rt.get bucket))
          acc (Rt.get seg.buckets))
      acc t.segs

  let size t = fold_buckets t (fun acc _ -> acc + 1) 0

  let fold t f acc = fold_buckets t (fun acc n -> f n.key n.value acc) acc

  let validate t =
    let seen = Hashtbl.create 64 in
    let ok =
      fold_buckets t
        (fun ok n ->
          let dup = Hashtbl.mem seen n.key in
          Hashtbl.replace seen n.key ();
          ok && not dup)
        true
    in
    Array.for_all
      (fun seg ->
        (not (OL.is_locked (OL.get_version seg.lock)))
        &&
        let c = ref 0 in
        Array.iter
          (fun bucket ->
            let rec go = function
              | None -> ()
              | Some n ->
                  incr c;
                  go (Rt.get n.next)
            in
            go (Rt.get bucket))
          (Rt.get seg.buckets);
        !c = Rt.get seg.count)
      t.segs
    && ok
end
