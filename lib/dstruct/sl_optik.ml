(** The paper's new OPTIK-based skip list (§5.3) — "optik1" and "optik2"
    in Figure 11.

    Traversal keeps the OPTIK version of every per-level predecessor
    (hand-over-hand version tracking, as in the OPTIK linked list).
    Updates then lock each predecessor with [trylock_version]: a success
    validates predecessor {e and} its next pointer in one CAS.

    - {e Insertion is incremental/eager}: the new node is physically
      linked level by level, each level under its own short-lived
      predecessor lock. If a level's trylock fails, the operation
      re-traverses and continues from the level that failed — levels
      already linked are never re-acquired. A [fully_linked] flag keeps
      partially inserted nodes from being deleted.
    - {e Deletion} locks the victim itself (keeping it locked for the
      whole unlink, so eager inserts cannot link behind it), sets its
      [deleted] flag, then acquires all predecessor locks bottom-up and
      unlinks top-down.

    The two variants differ in how deletion handles a predecessor
    trylock failure ([create ~variant:`Restart ()] = "optik2",
    [`Validate] = "optik1"): [`Restart] releases everything and
    re-traverses immediately; [`Validate] falls back to a blocking
    [lock_version] plus Herlihy-style fine-grained validation, restarting
    only if that fails too. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module OL = Optik.Versioned (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  let max_level = Sl_common.max_level

  type 'v node = {
    key : int;
    value : 'v;
    lock : OL.t;
    nexts : 'v node option Rt.atomic array;
    deleted : bool Rt.atomic;
    fully_linked : bool Rt.atomic;
    toplevel : int;
  }

  type variant = [ `Restart | `Validate ]

  type 'v t = { head : 'v node; variant : variant; qsbr : 'v node Q.t }

  let name = "sl-optik"

  let restarts = Rt.Probe.counter "sl-optik.restarts"

  (* A node's fields share one cache line, as in the C layout. *)
  let mk_node key value toplevel =
   Rt.Probe.with_site "sl-optik.node" @@ fun () ->
    let anchor = Rt.atomic None in
    let nexts =
      Array.init (toplevel + 1) (fun i ->
          if i = 0 then anchor else Rt.atomic_with anchor None)
    in
    {
      key;
      value;
      lock = Rt.atomic_with anchor 0;
      nexts;
      deleted = Rt.atomic_with anchor false;
      fully_linked = Rt.atomic_with anchor false;
      toplevel;
    }

  let create ?(variant : variant = `Restart) () =
    let tail = mk_node max_int (Obj.magic 0) (max_level - 1) in
    let head = mk_node min_int (Obj.magic 0) (max_level - 1) in
    for l = 0 to max_level - 1 do
      Rt.set head.nexts.(l) (Some tail)
    done;
    Rt.set head.fully_linked true;
    Rt.set tail.fully_linked true;
    { head; variant; qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "sl: key out of range"

  let next_at node l =
    match Rt.get node.nexts.(l) with
    | Some n -> n
    | None -> invalid_arg "sl: missing level link"

  (* Deleted victims keep their OPTIK lock forever (as in the OPTIK
     linked list, §4.2): a stale traversal that settles on an unlinked
     node then sees a locked version and can never validate against it.
     Consequently a {e blocking} acquire must watch the [deleted] flag or
     it would spin on a dead node for good. Returns the acquired (free)
     version, or [None] if the node is (or becomes) deleted. *)
  let lock_unless_deleted node =
    let s = B.spin () in
    let rec loop () =
      if Rt.get node.deleted then None
      else
        let v = OL.get_version node.lock in
        if OL.is_locked v then (
          B.spin_once s;
          loop ())
        else if OL.trylock_version node.lock v then Some v
        else (
          B.spin_once s;
          loop ())
    in
    loop ()

  (* Hand-over-hand version-tracking traversal: at each level record the
     predecessor, its version (read before following the level link) and
     the successor. *)
  let find t key preds succs (predvs : OL.version array) =
    let pred = ref t.head in
    for l = max_level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        let v = OL.get_version !pred.lock in
        let cur = next_at !pred l in
        if cur.key < key then pred := cur
        else (
          preds.(l) <- !pred;
          predvs.(l) <- v;
          succs.(l) <- cur;
          continue := false)
      done
    done

  let search t key =
    check_key key;
    Q.op_begin t.qsbr;
    let cur = ref t.head in
    for l = max_level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        let nxt = next_at !cur l in
        if nxt.key < key then cur := nxt else continue := false
      done
    done;
    let f = next_at !cur 0 in
    let res =
      if f.key = key && Rt.get f.fully_linked && not (Rt.get f.deleted) then
        Some f.value
      else None
    in
    Q.op_end t.qsbr;
    res

  let insert t key value =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let predvs = Array.make max_level 0 in
    let toplevel = Sl_common.random_toplevel (Rt.tid ()) in
    let newnode = mk_node key value toplevel in
    let b = B.create () in
    (* [linked_from] is the lowest level not yet linked; re-traversals
       continue from there ("the locks for the already inserted levels
       are not reacquired", §3.3). *)
    let rec attempt linked_from =
      find t key preds succs predvs;
      let found = succs.(0) in
      if linked_from = 0 && found.key = key && found != newnode then
        if Rt.get found.deleted then (
          (* Being removed: wait for the removal to finish. *)
          Rt.Probe.incr restarts;
          Rt.pause_n 16;
          attempt 0)
        else (
          let s = B.spin () in
          while not (Rt.get found.fully_linked) do
            B.spin_once s
          done;
          false)
      else
        let rec link l =
          if l > toplevel then (
            Rt.set newnode.fully_linked true;
            true)
          else if OL.trylock_version preds.(l).lock predvs.(l) then (
            (* Eager per-level insertion under a single short lock. *)
            Rt.set newnode.nexts.(l) (Some succs.(l));
            Rt.set preds.(l).nexts.(l) (Some newnode);
            OL.unlock preds.(l).lock;
            link (l + 1))
          else (
            Rt.Probe.incr restarts;
            B.once b;
            attempt l)
        in
        link linked_from
    in
    let res = attempt 0 in
    Q.op_end t.qsbr;
    res

  (* Lock all distinct predecessors of levels [0..top] of [victim].
     Returns the locked list, or [None] if the attempt must restart. *)
  let lock_preds_for_delete t ~victim preds predvs =
    let top = victim.toplevel in
    let locked = ref [] in
    let release_reverted () =
      List.iter (fun p -> OL.revert p.lock) !locked;
      locked := []
    in
    let rec go l =
      if l > top then Some !locked
      else
        let pred = preds.(l) in
        let same_as_prev =
          match !locked with p :: _ -> p == pred | [] -> false
        in
        if same_as_prev then
          (* Already hold this predecessor; check its link for this
             level directly (we own the lock, the check is stable). *)
          match Rt.get pred.nexts.(l) with
          | Some n when n == victim -> go (l + 1)
          | _ ->
              release_reverted ();
              None
        else if OL.trylock_version pred.lock predvs.(l) then (
          locked := pred :: !locked;
          go (l + 1))
        else
          match t.variant with
          | `Restart ->
              release_reverted ();
              None
          | `Validate -> (
              (* optik1: blocking (deleted-aware) lock; if the version
                 moved, do the fine-grained validation instead. *)
              match lock_unless_deleted pred with
              | None ->
                  release_reverted ();
                  None
              | Some acquired ->
                  let same = OL.same_version acquired predvs.(l) in
                  let still_ok =
                    same
                    ||
                    match Rt.get pred.nexts.(l) with
                    | Some n -> n == victim
                    | None -> false
                  in
                  if still_ok then (
                    locked := pred :: !locked;
                    go (l + 1))
                  else (
                    OL.revert pred.lock;
                    release_reverted ();
                    None))
    in
    go 0

  let delete t key =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let predvs = Array.make max_level 0 in
    (* Once we own and mark the victim, reattempts only redo the
       predecessor phase. *)
    let b = B.create () in
    let rec unlink_phase victim =
      match lock_preds_for_delete t ~victim preds predvs with
      | None ->
          Rt.Probe.incr restarts;
          B.once b;
          find t key preds succs predvs;
          unlink_phase victim
      | Some locked ->
          for l = victim.toplevel downto 0 do
            Rt.set preds.(l).nexts.(l) (Rt.get victim.nexts.(l))
          done;
          List.iter (fun p -> OL.unlock p.lock) locked;
          (* The victim's lock is never released (§4.2): its permanently
             locked version is what invalidates stale traversals that
             still hold a reference to it. *)
          Q.retire t.qsbr victim;
          Some victim.value
    in
    let res =
      find t key preds succs predvs;
      let f = succs.(0) in
      if f.key <> key then None
      else if not (Rt.get f.fully_linked) then None
      else if Rt.get f.deleted then None
      else (
        (* Lock the victim itself for the whole removal: eager inserts
           that would link behind it are blocked, then fail validation. *)
        match lock_unless_deleted f with
        | None -> None
        | Some _ ->
            if Rt.get f.deleted then (
              OL.revert f.lock;
              None)
            else (
              Rt.set f.deleted true;
              unlink_phase f))
    in
    Q.op_end t.qsbr;
    res

  let size t =
    let n = ref 0 in
    let cur = ref (next_at t.head 0) in
    while !cur.key < max_int do
      if Rt.get !cur.fully_linked && not (Rt.get !cur.deleted) then incr n;
      cur := next_at !cur 0
    done;
    !n

  let fold t f acc =
    let acc = ref acc in
    let cur = ref (next_at t.head 0) in
    while !cur.key < max_int do
      if Rt.get !cur.fully_linked && not (Rt.get !cur.deleted) then
        acc := f !cur.key !cur.value !acc;
      cur := next_at !cur 0
    done;
    !acc

  let validate t =
    let ok = ref true in
    let cur = ref (next_at t.head 0) in
    let prev_key = ref min_int in
    while !cur.key < max_int do
      if !cur.key <= !prev_key then ok := false;
      if Rt.get !cur.deleted then ok := false;
      if not (Rt.get !cur.fully_linked) then ok := false;
      if OL.is_locked (OL.get_version !cur.lock) then ok := false;
      prev_key := !cur.key;
      cur := next_at !cur 0
    done;
    for l = 1 to max_level - 1 do
      let keys_below = Hashtbl.create 64 in
      let c = ref (next_at t.head (l - 1)) in
      while !c.key < max_int do
        Hashtbl.replace keys_below !c.key ();
        c := next_at !c (l - 1)
      done;
      let c = ref (next_at t.head l) in
      let pk = ref min_int in
      while !c.key < max_int do
        if !c.key <= !pk then ok := false;
        if not (Hashtbl.mem keys_below !c.key) then ok := false;
        pk := !c.key;
        c := next_at !c l
      done
    done;
    !ok
end
