(** External (leaf-oriented) binary search trees with OPTIK concurrency.

    The paper's related-work section (§6) points out that BST-TK — the
    binary search tree of the ASCY/ASPLOS'15 work by the same authors —
    "detects concurrency with version numbers (as OPTIK does)"; OPTIK is
    the generalization of that idea. This module closes the loop and
    builds that tree with the OPTIK lock library, plus a global-lock
    baseline for the benchmarks.

    Layout: internal nodes route ([k < node.key] goes left, otherwise
    right) and never hold user keys; leaves hold the key/value pairs. Two
    sentinel internals above the tree guarantee every user leaf has an
    internal parent {e and} grandparent, so updates never touch a special
    case:

    - {e insert} replaces a leaf with a fresh internal node holding the
      old leaf and the new one — it locks and validates only the parent
      (one [trylock_version], exactly the pattern of §3);
    - {e delete} unlinks the leaf's parent, promoting the sibling — it
      locks grandparent then parent. The unlinked parent's OPTIK lock is
      {e never released}, so stale traversals that still reference it can
      never validate against it (the discipline of §4.2). *)

module type RT = Rt.Rt_intf.RT
module type LOCK = Rt.Rt_intf.LOCK

module Backoff = Rt.Backoff

module Make_gen (Rt : RT) (O : Optik.MAKER) = struct
  module B = Backoff.Make (Rt)
  module OL = O (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v leaf = { lkey : int; value : 'v }

  type 'v tree = Leaf of 'v leaf | Node of 'v inode

  and 'v inode = {
    key : int;  (** routing key: left subtree < key <= right subtree *)
    lock : OL.t;
    left : 'v tree Rt.atomic;
    right : 'v tree Rt.atomic;
  }

  type 'v t = { root : 'v inode; qsbr : 'v inode Q.t }

  let name = "bst-optik"

  let restarts = Rt.Probe.counter "bst-optik.restarts"

  (* One internal node = one cache line (lock + both child pointers). *)
  let mk_inode key l r =
    let left = Rt.atomic l in
    {
      key;
      lock = Rt.atomic_with left 0;
      left;
      right = Rt.atomic_with left r;
    }

  let create ?capacity:_ () =
    (* grandroot -> root -> (empty = min_int sentinel leaf) *)
    let empty = Leaf { lkey = min_int; value = Obj.magic 0 } in
    let root = mk_inode max_int empty (Leaf { lkey = max_int; value = Obj.magic 0 }) in
    let groot =
      mk_inode max_int (Node root)
        (Leaf { lkey = max_int; value = Obj.magic 0 })
    in
    { root = groot; qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "bst: key out of range"

  let child_of n k = if k < n.key then n.left else n.right

  (* Oblivious search (updates linearize at single child-pointer stores). *)
  let search t k =
    check_key k;
    Q.op_begin t.qsbr;
    let rec go n =
      match Rt.get (child_of n k) with
      | Leaf l -> if l.lkey = k then Some l.value else None
      | Node n' -> go n'
    in
    let res = go t.root in
    Q.op_end t.qsbr;
    res

  (* Traverse to the leaf for [k], hand-over-hand tracking grandparent
     and parent; each node's version is read {e before} following its
     child pointer, so a later [trylock_version] validates the pointer
     we followed. *)
  let locate t k =
    let rec go gp gpv p =
      let pv = OL.get_version p.lock in
      match Rt.get (child_of p k) with
      | Leaf l -> (gp, gpv, p, pv, l)
      | Node n -> go p pv n
    in
    let rv = OL.get_version t.root.lock in
    match Rt.get t.root.left with
    | Node root1 -> go t.root rv root1
    | Leaf _ -> assert false

  let insert t k v =
    check_key k;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let _, _, p, pv, leaf = locate t k in
      if leaf.lkey = k then false
      else if not (OL.trylock_version p.lock pv) then (
        Rt.Probe.incr restarts;
        B.once b;
        attempt ())
      else (
        let old = Leaf leaf in
        let fresh = Leaf { lkey = k; value = v } in
        let node =
          if k < leaf.lkey then Node (mk_inode leaf.lkey fresh old)
          else Node (mk_inode k old fresh)
        in
        Rt.set (child_of p k) node;
        OL.unlock p.lock;
        true)
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let delete t k =
    check_key k;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let gp, gpv, p, pv, leaf = locate t k in
      if leaf.lkey <> k then None
      else if not (OL.trylock_version gp.lock gpv) then (
        Rt.Probe.incr restarts;
        B.once b;
        attempt ())
      else if not (OL.trylock_version p.lock pv) then (
        OL.revert gp.lock;
        Rt.Probe.incr restarts;
        B.once b;
        attempt ())
      else (
        (* promote the sibling into the grandparent's slot *)
        let sibling =
          if k < p.key then Rt.get p.right else Rt.get p.left
        in
        Rt.set (child_of gp k) sibling;
        OL.unlock gp.lock;
        (* [p]'s lock is never released: it marks the node dead. *)
        Q.retire t.qsbr p;
        Some leaf.value)
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let size t =
    let rec go = function
      | Leaf l -> if l.lkey <> min_int && l.lkey <> max_int then 1 else 0
      | Node n -> go (Rt.get n.left) + go (Rt.get n.right)
    in
    go (Node t.root)

  let fold t f acc =
    let rec go acc = function
      | Leaf l ->
          if l.lkey <> min_int && l.lkey <> max_int then f l.lkey l.value acc
          else acc
      | Node n -> go (go acc (Rt.get n.left)) (Rt.get n.right)
    in
    go acc (Node t.root)

  (* Quiescent invariants: routing (left < key <= right) for user keys
     (sentinel leaves are exempt), all reachable internal locks free. *)
  let validate t =
    let ok = ref true in
    let rec go lo hi = function
      | Leaf l ->
          if
            l.lkey <> min_int && l.lkey <> max_int
            && not (lo <= l.lkey && l.lkey < hi)
          then ok := false
      | Node n ->
          if OL.is_locked (OL.get_version n.lock) then ok := false;
          go lo (min hi n.key) (Rt.get n.left);
          go (max lo n.key) hi (Rt.get n.right)
    in
    go min_int max_int (Node t.root);
    !ok
end

module Make (Rt : RT) = Make_gen (Rt) (Optik.Versioned)

(** Pessimistic baseline: the same external tree under one global lock
    (updates lock and re-traverse; searches stay oblivious, the same
    optimization as "mcs-gl-opt"). *)
module Global_lock (Rt : RT) (Lock : LOCK) = struct
  module Q = Mem.Qsbr.Make (Rt)

  type 'v leaf = { lkey : int; value : 'v }

  type 'v tree = Leaf of 'v leaf | Node of 'v inode

  and 'v inode = {
    key : int;
    left : 'v tree Rt.atomic;
    right : 'v tree Rt.atomic;
  }

  type 'v t = { root : 'v inode; lock : Lock.t; qsbr : 'v inode Q.t }

  let name = "bst-gl"

  let mk_inode key l r =
    let left = Rt.atomic l in
    { key; left; right = Rt.atomic_with left r }

  let create ?capacity:_ () =
    let empty = Leaf { lkey = min_int; value = Obj.magic 0 } in
    let root =
      mk_inode max_int empty (Leaf { lkey = max_int; value = Obj.magic 0 })
    in
    let groot =
      mk_inode max_int (Node root)
        (Leaf { lkey = max_int; value = Obj.magic 0 })
    in
    { root = groot; lock = Lock.create (); qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "bst: key out of range"

  let child_of n k = if k < n.key then n.left else n.right

  let search t k =
    check_key k;
    Q.op_begin t.qsbr;
    let rec go n =
      match Rt.get (child_of n k) with
      | Leaf l -> if l.lkey = k then Some l.value else None
      | Node n' -> go n'
    in
    let res = go t.root in
    Q.op_end t.qsbr;
    res

  let locate t k =
    let rec go gp p =
      match Rt.get (child_of p k) with
      | Leaf l -> (gp, p, l)
      | Node n -> go p n
    in
    match Rt.get t.root.left with
    | Node root1 -> go t.root root1
    | Leaf _ -> assert false

  let insert t k v =
    check_key k;
    Q.op_begin t.qsbr;
    Lock.lock t.lock;
    let _, p, leaf = locate t k in
    let res =
      if leaf.lkey = k then false
      else (
        let old = Leaf leaf in
        let fresh = Leaf { lkey = k; value = v } in
        let node =
          if k < leaf.lkey then Node (mk_inode leaf.lkey fresh old)
          else Node (mk_inode k old fresh)
        in
        Rt.set (child_of p k) node;
        true)
    in
    Lock.unlock t.lock;
    Q.op_end t.qsbr;
    res

  let delete t k =
    check_key k;
    Q.op_begin t.qsbr;
    Lock.lock t.lock;
    let gp, p, leaf = locate t k in
    let res =
      if leaf.lkey <> k then None
      else (
        let sibling =
          if k < p.key then Rt.get p.right else Rt.get p.left
        in
        Rt.set (child_of gp k) sibling;
        Q.retire t.qsbr p;
        Some leaf.value)
    in
    Lock.unlock t.lock;
    Q.op_end t.qsbr;
    res

  let size t =
    let rec go = function
      | Leaf l -> if l.lkey <> min_int && l.lkey <> max_int then 1 else 0
      | Node n -> go (Rt.get n.left) + go (Rt.get n.right)
    in
    go (Node t.root)

  let fold t f acc =
    let rec go acc = function
      | Leaf l ->
          if l.lkey <> min_int && l.lkey <> max_int then f l.lkey l.value acc
          else acc
      | Node n -> go (go acc (Rt.get n.left)) (Rt.get n.right)
    in
    go acc (Node t.root)

  let validate t =
    let ok = ref true in
    let rec go lo hi = function
      | Leaf l ->
          if
            l.lkey <> min_int && l.lkey <> max_int
            && not (lo <= l.lkey && l.lkey < hi)
          then ok := false
      | Node n ->
          go lo (min hi n.key) (Rt.get n.left);
          go (max lo n.key) hi (Rt.get n.right)
    in
    go min_int max_int (Node t.root);
    !ok
end
