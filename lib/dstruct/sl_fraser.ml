(** Lock-free skip list (Fraser, PhD 2004 / Herlihy–Shavit formulation) —
    "fraser" in Figure 11.

    Each per-level next pointer carries a logical-deletion mark (encoded
    as an immutable link record, as in {!Ll_harris}; OCaml cannot steal
    pointer bits). Deletion marks a victim's links from the top level
    down — the level-0 mark is the linearization point — and physical
    unlinking is done by [find]'s helping snips. Insertion links bottom-up
    with per-level CAS; the level-0 link is its linearization point. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  let max_level = Sl_common.max_level

  type 'v link = { dest : 'v node; marked : bool }

  and 'v node = {
    key : int;
    value : 'v;
    nexts : 'v link option Rt.atomic array;
    toplevel : int;
  }

  type 'v t = { head : 'v node; qsbr : 'v node Q.t }

  let name = "sl-fraser"

  let restarts = Rt.Probe.counter "sl-fraser.restarts"

  exception Restart

  (* Level links of one node share a cache line (C-struct layout). *)
  let mk_node key value toplevel =
    let anchor = Rt.atomic None in
    {
      key;
      value;
      nexts =
        Array.init (toplevel + 1) (fun i ->
            if i = 0 then anchor else Rt.atomic_with anchor None);
      toplevel;
    }

  let create ?capacity:_ () =
    let tail = mk_node max_int (Obj.magic 0) (max_level - 1) in
    let head = mk_node min_int (Obj.magic 0) (max_level - 1) in
    for l = 0 to max_level - 1 do
      Rt.set head.nexts.(l) (Some { dest = tail; marked = false })
    done;
    { head; qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "sl: key out of range"

  (* Find preds and succs at every level, snipping marked successors on
     the way. [preads.(l)] keeps the physical option value read from
     [preds.(l).nexts.(l)] — the witness later CAS'd against. Returns
     whether the key is present (level-0 successor matches, unmarked).

     A failed snip CAS restarts the whole walk (Harris/Michael rule); the
     restart backs off — under a hot-key deletion storm many threads race
     to snip the same nodes, and immediate retries livelock. *)
  let rec find_b b t key preds succs (preads : 'v link option array) =
    let walk () =
      let pred = ref t.head in
      for l = max_level - 1 downto 0 do
        let continue = ref true in
        while !continue do
          let pread = Rt.get !pred.nexts.(l) in
          let plink =
            match pread with
            | Some p -> p
            | None -> invalid_arg "sl: missing level link"
          in
          (* The predecessor itself got marked (deleted) under our feet:
             its link is no longer a valid CAS witness — settling with it
             would let a later CAS overwrite the mark. Restart. *)
          if plink.marked then raise_notrace Restart;
          let cur = plink.dest in
          let snip_dest =
            if cur.key = max_int then None
            else
              match Rt.get cur.nexts.(l) with
              | Some clink when clink.marked -> Some clink.dest
              | _ -> None
          in
          match snip_dest with
          | Some dest ->
              (* Help unlink the logically deleted [cur] at this level. *)
              if Rt.cas !pred.nexts.(l) pread (Some { dest; marked = false })
              then (if l = 0 then Q.retire t.qsbr cur)
              else raise_notrace Restart
          | None ->
              if cur.key < key then pred := cur
              else (
                preds.(l) <- !pred;
                preads.(l) <- pread;
                succs.(l) <- cur;
                continue := false)
        done
      done
    in
    match walk () with
    | () -> (
        let f = succs.(0) in
        f.key = key
        &&
        match Rt.get f.nexts.(0) with
        | Some l -> not l.marked
        | None -> false)
    | exception Restart ->
        Rt.Probe.incr restarts;
        B.once b;
        find_b b t key preds succs preads

  let find t key preds succs preads =
    find_b (B.create ()) t key preds succs preads

  let search t key =
    check_key key;
    Q.op_begin t.qsbr;
    (* Read-only traversal: no helping, no stores. *)
    let cur = ref t.head in
    for l = max_level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        match Rt.get !cur.nexts.(l) with
        | Some link when link.dest.key < key -> cur := link.dest
        | _ -> continue := false
      done
    done;
    let res =
      match Rt.get !cur.nexts.(0) with
      | Some link when link.dest.key = key -> (
          let f = link.dest in
          match Rt.get f.nexts.(0) with
          | Some fl when not fl.marked -> Some f.value
          | _ -> None)
      | _ -> None
    in
    Q.op_end t.qsbr;
    res

  let insert t key value =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let preads : 'v link option array = Array.make max_level None in
    let toplevel = Sl_common.random_toplevel (Rt.tid ()) in
    let b = B.create () in
    let rec attempt () =
      if find t key preds succs preads then false
      else (
        let newnode = mk_node key value toplevel in
        for l = 0 to toplevel do
          Rt.set newnode.nexts.(l) (Some { dest = succs.(l); marked = false })
        done;
        (* Linearization point: link at level 0. *)
        if
          not
            (Rt.cas preds.(0).nexts.(0) preads.(0)
               (Some { dest = newnode; marked = false }))
        then (
          Rt.Probe.incr restarts;
          B.once b;
          attempt ())
        else (
          (* Link the upper levels; on interference, re-find and retry
             the level. Stop if the node got deleted meanwhile (its link
             is marked — deleters mark top-down before level 0). *)
          let rec link l =
            if l > toplevel then ()
            else
              let nread = Rt.get newnode.nexts.(l) in
              match nread with
              | Some nl when nl.marked -> ()
              | _ ->
                  let succ = succs.(l) in
                  let own_ok =
                    match nread with
                    | Some nl when nl.dest == succ -> true
                    | _ ->
                        Rt.cas newnode.nexts.(l) nread
                          (Some { dest = succ; marked = false })
                  in
                  if
                    own_ok
                    && Rt.cas preds.(l).nexts.(l) preads.(l)
                         (Some { dest = newnode; marked = false })
                  then link (l + 1)
                  else (
                    Rt.Probe.incr restarts;
                    ignore (find t key preds succs preads : bool);
                    link l)
          in
          link 1;
          true))
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let delete t key =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let preads : 'v link option array = Array.make max_level None in
    let res =
      if not (find t key preds succs preads) then None
      else
        let victim = succs.(0) in
        (* Mark upper levels top-down. *)
        for l = victim.toplevel downto 1 do
          let rec mark () =
            let w = Rt.get victim.nexts.(l) in
            match w with
            | Some link when not link.marked ->
                if
                  not
                    (Rt.cas victim.nexts.(l) w
                       (Some { dest = link.dest; marked = true }))
                then mark ()
            | _ -> ()
          in
          mark ()
        done;
        (* Level 0: linearization point; exactly one deleter wins. *)
        let rec mark0 () =
          let w = Rt.get victim.nexts.(0) in
          match w with
          | Some link when not link.marked ->
              if
                Rt.cas victim.nexts.(0) w
                  (Some { dest = link.dest; marked = true })
              then (
                (* Help with the physical unlink. *)
                ignore (find t key preds succs preads : bool);
                Some victim.value)
              else (
                Rt.Probe.incr restarts;
                mark0 ())
          | _ -> None (* lost the race to another deleter *)
        in
        mark0 ()
    in
    Q.op_end t.qsbr;
    res

  let size t =
    let n = ref 0 in
    let rec go node =
      match Rt.get node.nexts.(0) with
      | None -> ()
      | Some l ->
          let nxt = l.dest in
          if nxt.key < max_int then (
            (match Rt.get nxt.nexts.(0) with
            | Some l' when not l'.marked -> incr n
            | _ -> ());
            go nxt)
    in
    go t.head;
    !n

  let fold t f acc =
    let rec go acc node =
      match Rt.get node.nexts.(0) with
      | None -> acc
      | Some l ->
          let nxt = l.dest in
          if nxt.key < max_int then
            let acc =
              match Rt.get nxt.nexts.(0) with
              | Some l' when not l'.marked -> f nxt.key nxt.value acc
              | _ -> acc
            in
            go acc nxt
          else acc
    in
    go acc t.head

  let validate t =
    let ok = ref true in
    for l = 0 to max_level - 1 do
      let rec go node pk =
        match Rt.get node.nexts.(l) with
        | None -> if node.key <> max_int then ok := false
        | Some link ->
            if link.marked then ok := false;
            if link.dest.key <= pk then ok := false;
            if link.dest.key < max_int then go link.dest link.dest.key
      in
      go t.head min_int
    done;
    !ok
end
