(** The optimistic skip list of Herlihy, Lev, Luchangco and Shavit
    (SIROCCO '07) — "herlihy" in Figure 11 — plus the paper's
    OPTIK-validated variant "herl-optik" (§5.3).

    Classic algorithm: updates traverse optimistically collecting
    predecessors and successors per level, lock the (distinct)
    predecessors bottom-up, and {e validate} that each predecessor is
    unmarked and still points to the recorded successor. Deletion first
    locks and logically marks the victim, then unlinks it under the
    predecessor locks. [fully_linked] publishes completely inserted nodes.

    The OPTIK variant ([create ~optik:true ()]) gives each node an OPTIK
    lock and records predecessor versions during traversal. Locking uses
    [lock_version]: when the version is unchanged, the fine-grained
    per-level validation (mark and next-pointer checks) is skipped
    entirely — the version proves the node was not modified. Only on a
    version mismatch does it fall back to Herlihy's original validation.
    (A version match also covers the [succ.marked] check: a marked
    successor is tolerable because the deleter revalidates its
    predecessors under their locks and re-traverses on failure.) *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module OL = Optik.Versioned (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  let max_level = Sl_common.max_level

  type 'v node = {
    key : int;
    value : 'v;
    lock : OL.t;  (** plain lock for "herlihy", OPTIK lock for "herl-optik" *)
    nexts : 'v node option Rt.atomic array;
    marked : bool Rt.atomic;
    fully_linked : bool Rt.atomic;
    toplevel : int;  (** highest valid index into [nexts] *)
  }

  type 'v t = { head : 'v node; optik : bool; qsbr : 'v node Q.t }

  let name = "sl-herlihy"

  let restarts = Rt.Probe.counter "sl-herlihy.restarts"
  let optik_validations = Rt.Probe.counter "sl-herlihy.optik-fast-validations"

  (* diagnostic breakdown of validation failures (also used to reproduce
     the §5.3 restart-rate analysis) *)
  let vfail_pred_marked = Rt.Probe.counter "sl-herlihy.vfail-pred-marked"
  let vfail_succ = Rt.Probe.counter "sl-herlihy.vfail-succ"
  let vfail_next = Rt.Probe.counter "sl-herlihy.vfail-next"
  let found_marked_retry = Rt.Probe.counter "sl-herlihy.found-marked-retry"

  (* A node's fields share one cache line (lock, flags and the level
     links — tall nodes would spill onto further lines in C, but levels
     above 3 are rare and the approximation is conservative for OPTIK,
     whose per-node version already covers every level). *)
  let mk_node key value toplevel =
    let anchor = Rt.atomic None in
    let nexts =
      Array.init (toplevel + 1) (fun i ->
          if i = 0 then anchor else Rt.atomic_with anchor None)
    in
    {
      key;
      value;
      lock = Rt.atomic_with anchor 0;
      nexts;
      marked = Rt.atomic_with anchor false;
      fully_linked = Rt.atomic_with anchor false;
      toplevel;
    }

  let create ?(optik = false) () =
    let tail = mk_node max_int (Obj.magic 0) (max_level - 1) in
    let head = mk_node min_int (Obj.magic 0) (max_level - 1) in
    for l = 0 to max_level - 1 do
      Rt.set head.nexts.(l) (Some tail)
    done;
    Rt.set head.fully_linked true;
    Rt.set tail.fully_linked true;
    { head; optik; qsbr = Q.create () }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "sl: key out of range"

  let next_at node l =
    match Rt.get node.nexts.(l) with
    | Some n -> n
    | None -> invalid_arg "sl: missing level link"

  (* Traverse, collecting predecessor / successor (and, for the OPTIK
     variant, the predecessor's version read {e before} following its
     next pointer) at every level. Returns the highest level at which the
     key was found, or -1. *)
  let find t key (preds : 'v node array) (succs : 'v node array)
      (predvs : OL.version array) =
    let lfound = ref (-1) in
    let pred = ref t.head in
    for l = max_level - 1 downto 0 do
      let continue = ref true in
      while !continue do
        (* Version tracking costs one extra read per settled level; only
           the OPTIK variant pays for it. *)
        let v = if t.optik then OL.get_version !pred.lock else 0 in
        let cur = next_at !pred l in
        if cur.key < key then pred := cur
        else (
          preds.(l) <- !pred;
          predvs.(l) <- v;
          succs.(l) <- cur;
          if !lfound = -1 && cur.key = key then lfound := l;
          continue := false)
      done
    done;
    !lfound

  let search t key =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let predvs = Array.make max_level 0 in
    let lfound = find t key preds succs predvs in
    let res =
      if lfound >= 0 then (
        let f = succs.(lfound) in
        if Rt.get f.fully_linked && not (Rt.get f.marked) then Some f.value
        else None)
      else None
    in
    Q.op_end t.qsbr;
    res

  (* Lock the distinct predecessors of levels [0..top], validating each
     level. Returns [None] on validation failure (with everything
     unlocked) or [Some distinct_locked_preds]. *)
  let lock_preds t ~top ~victim preds succs predvs =
    let locked : 'v node list ref = ref [] in
    let valid = ref true in
    let prev_pred = ref None in
    let l = ref 0 in
    while !valid && !l <= top do
      let pred = preds.(!l) and succ = succs.(!l) in
      let same_as_prev =
        match !prev_pred with Some p -> p == pred | None -> false
      in
      let version_ok = ref false in
      if not same_as_prev then (
        if t.optik then (
          (* herl-optik: single blocking lock that reports whether the
             version is unchanged — if so, skip the per-level pointer
             checks. The [marked] re-check is still required: a stale
             traversal may have entered an already-unlinked node and read
             its (released, post-deletion) version, which then validates
             even though the node is dead. [marked] is never reset, so
             unmarked-under-lock proves the predecessor is still live. *)
          version_ok :=
            OL.lock_version pred.lock predvs.(!l)
            && not (Rt.get pred.marked);
          if !version_ok then Rt.Probe.incr optik_validations)
        else OL.lock pred.lock;
        locked := pred :: !locked;
        prev_pred := Some pred);
      if not !version_ok then (
        (* Fine-grained validation (original Herlihy). *)
        let succ_ok =
          match victim with
          | Some v -> succ == v (* delete: successor must be the victim *)
          | None -> not (Rt.get succ.marked)
        in
        let next_ok =
          match Rt.get pred.nexts.(!l) with
          | Some n -> n == succ
          | None -> false
        in
        if Rt.get pred.marked then (
          Rt.Probe.incr vfail_pred_marked;
          valid := false)
        else if not succ_ok then (
          Rt.Probe.incr vfail_succ;
          valid := false)
        else if not next_ok then (
          Rt.Probe.incr vfail_next;
          valid := false));
      incr l
    done;
    if !valid then Some !locked
    else (
      List.iter (fun p -> OL.unlock p.lock) !locked;
      None)

  let insert t key value =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let predvs = Array.make max_level 0 in
    let toplevel = Sl_common.random_toplevel (Rt.tid ()) in
    let b = B.create () in
    let rec attempt () =
      let lfound = find t key preds succs predvs in
      if lfound >= 0 then (
        let f = succs.(lfound) in
        if not (Rt.get f.marked) then (
          (* Present (or being inserted): wait until fully linked. *)
          let s = B.spin () in
          while not (Rt.get f.fully_linked) do
            B.spin_once s
          done;
          false)
        else (
          (* Being deleted: retry until it is gone. *)
          Rt.Probe.incr restarts;
          Rt.Probe.incr found_marked_retry;
          B.once b;
          attempt ()))
      else
        match lock_preds t ~top:toplevel ~victim:None preds succs predvs with
        | None ->
            Rt.Probe.incr restarts;
            B.once b;
            attempt ()
        | Some locked ->
            let newnode = mk_node key value toplevel in
            for l = 0 to toplevel do
              Rt.set newnode.nexts.(l) (Some succs.(l))
            done;
            for l = 0 to toplevel do
              Rt.set preds.(l).nexts.(l) (Some newnode)
            done;
            Rt.set newnode.fully_linked true;
            List.iter (fun p -> OL.unlock p.lock) locked;
            true
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let ok_to_delete f lfound =
    Rt.get f.fully_linked && f.toplevel = lfound && not (Rt.get f.marked)

  let delete t key =
    check_key key;
    Q.op_begin t.qsbr;
    let preds = Array.make max_level t.head in
    let succs = Array.make max_level t.head in
    let predvs = Array.make max_level 0 in
    let victim_locked = ref None in
    let b = B.create () in
    let rec attempt () =
      let lfound = find t key preds succs predvs in
      let proceed victim =
        let top = victim.toplevel in
        match
          lock_preds t ~top ~victim:(Some victim) preds succs predvs
        with
        | None ->
            Rt.Probe.incr restarts;
            B.once b;
            attempt ()
        | Some locked ->
            for l = top downto 0 do
              Rt.set preds.(l).nexts.(l) (Rt.get victim.nexts.(l))
            done;
            OL.unlock victim.lock;
            List.iter (fun p -> OL.unlock p.lock) locked;
            Q.retire t.qsbr victim;
            Some victim.value
      in
      match !victim_locked with
      | Some victim ->
          (* Victim already locked and marked by us; revalidate preds. *)
          proceed victim
      | None ->
          if lfound < 0 then None
          else
            let f = succs.(lfound) in
            if not (ok_to_delete f lfound) then None
            else (
              OL.lock f.lock;
              if Rt.get f.marked then (
                (* Raced with another deleter. *)
                OL.revert f.lock;
                None)
              else (
                Rt.set f.marked true;
                victim_locked := Some f;
                proceed f))
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let size t =
    let n = ref 0 in
    let cur = ref (next_at t.head 0) in
    while !cur.key < max_int do
      if Rt.get !cur.fully_linked && not (Rt.get !cur.marked) then incr n;
      cur := next_at !cur 0
    done;
    !n

  let fold t f acc =
    let acc = ref acc in
    let cur = ref (next_at t.head 0) in
    while !cur.key < max_int do
      if Rt.get !cur.fully_linked && not (Rt.get !cur.marked) then
        acc := f !cur.key !cur.value !acc;
      cur := next_at !cur 0
    done;
    !acc

  (* Quiescent invariants: each level sorted; every node linked at level
     [l] is linked at all lower levels; no marks, no partial links. *)
  let validate t =
    let ok = ref true in
    (* level 0 ordering + flags *)
    let cur = ref (next_at t.head 0) in
    let prev_key = ref min_int in
    while !cur.key < max_int do
      if !cur.key <= !prev_key then ok := false;
      if Rt.get !cur.marked then ok := false;
      if not (Rt.get !cur.fully_linked) then ok := false;
      if OL.is_locked (OL.get_version !cur.lock) then ok := false;
      prev_key := !cur.key;
      cur := next_at !cur 0
    done;
    (* upper levels: subsets of level below, sorted *)
    for l = 1 to max_level - 1 do
      let keys_below = Hashtbl.create 64 in
      let c = ref (next_at t.head (l - 1)) in
      while !c.key < max_int do
        Hashtbl.replace keys_below !c.key ();
        c := next_at !c (l - 1)
      done;
      let c = ref (next_at t.head l) in
      let pk = ref min_int in
      while !c.key < max_int do
        if !c.key <= !pk then ok := false;
        if not (Hashtbl.mem keys_below !c.key) then ok := false;
        pk := !c.key;
        c := next_at !c l
      done
    done;
    !ok
end
