(** Fixed-size concurrent array maps (§4.1 of the paper).

    A map is a fixed array of key/value slots; key [0] marks a free slot,
    so user keys must be non-zero. Insertions into a full map return
    [false] (no resizing, as in the paper).

    {!Lock_based} is the pessimistic baseline ("mcs" in Figure 7): every
    operation — including search — takes a global MCS lock. {!Optik_based}
    is the Figure-6 algorithm: searches and infeasible updates complete
    without ever locking, validated by the OPTIK version number. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

let default_capacity = 64

(* Array slots are contiguous in memory; model four key/value pairs per
   cache line (16 bytes per pair), which is what makes the "optik-map"
   hash table of §5.2 sensitive to prefetching on Xeon. *)
let pairs_per_line = 4

module Lock_based (Rt : RT) = struct
  module Lock = Locks.Mcs (Rt)

  type 'v t = {
    keys : int Rt.atomic array;
    vals : 'v option Rt.atomic array;
    lock : Lock.t;
    cap : int;
  }

  let name = "map-mcs"

  let create ?(capacity = default_capacity) () =
    let group0 = Sim_group.fresh () in
    {
      keys =
        Array.init capacity (fun i ->
            Rt.atomic_packed ~streaming:true ~group:(group0 + (i / pairs_per_line)) 0);
      vals =
        Array.init capacity (fun i ->
            Rt.atomic_packed ~streaming:true ~group:(group0 + (i / pairs_per_line)) None);
      lock = Lock.create ();
      cap = capacity;
    }

  let check_key k = if k = 0 then invalid_arg "map: key must be non-zero"

  let search t key =
    check_key key;
    Lock.lock t.lock;
    let res = ref None in
    (try
       for i = 0 to t.cap - 1 do
         if Rt.get t.keys.(i) = key then (
           res := Rt.get t.vals.(i);
           raise_notrace Exit)
       done
     with Exit -> ());
    Lock.unlock t.lock;
    !res

  let insert t key v =
    check_key key;
    Lock.lock t.lock;
    let free = ref (-1) in
    let dup = ref false in
    (try
       for i = 0 to t.cap - 1 do
         let k = Rt.get t.keys.(i) in
         if k = key then (
           dup := true;
           raise_notrace Exit)
         else if k = 0 && !free < 0 then free := i
       done
     with Exit -> ());
    let res =
      if !dup || !free < 0 then false
      else (
        Rt.set t.vals.(!free) (Some v);
        Rt.set t.keys.(!free) key;
        true)
    in
    Lock.unlock t.lock;
    res

  let delete t key =
    check_key key;
    Lock.lock t.lock;
    let res = ref None in
    (try
       for i = 0 to t.cap - 1 do
         if Rt.get t.keys.(i) = key then (
           res := Rt.get t.vals.(i);
           Rt.set t.keys.(i) 0;
           Rt.set t.vals.(i) None;
           raise_notrace Exit)
       done
     with Exit -> ());
    Lock.unlock t.lock;
    !res

  let size t =
    let n = ref 0 in
    for i = 0 to t.cap - 1 do
      if Rt.get t.keys.(i) <> 0 then incr n
    done;
    !n

  let fold t f acc =
    let acc = ref acc in
    for i = 0 to t.cap - 1 do
      let k = Rt.get t.keys.(i) in
      if k <> 0 then
        match Rt.get t.vals.(i) with
        | Some v -> acc := f k v !acc
        | None -> ()
    done;
    !acc

  (* No duplicate keys; every occupied slot has a value. *)
  let validate t =
    let seen = Hashtbl.create 16 in
    let ok = ref true in
    for i = 0 to t.cap - 1 do
      let k = Rt.get t.keys.(i) in
      if k <> 0 then (
        if Hashtbl.mem seen k then ok := false;
        Hashtbl.replace seen k ();
        if Rt.get t.vals.(i) = None then ok := false)
    done;
    !ok
end

(* Parameterized over the OPTIK implementation so the versioned/ticket
   backend ablation (DESIGN.md A1) can compare both on the same
   structure. *)
module Optik_based_gen (Rt : RT) (O : Optik.MAKER) = struct
  module B = Backoff.Make (Rt)
  module OL = O (Rt)

  type 'v t = {
    keys : int Rt.atomic array;
    vals : 'v option Rt.atomic array;
    lock : OL.t;
    cap : int;
    eager_search : bool;
        (** §4.1 discusses an alternative search that re-reads the
            version just before matching a key — finer-grained
            validation, but it "puts a lot of stress on the cache line of
            the OPTIK lock, resulting in lower performance". Kept as an
            ablation. *)
  }

  let name = "map-optik"

  let restarts = Rt.Probe.counter "map-optik.restarts"

  let create ?(capacity = default_capacity) ?(eager_search = false) () =
    let group0 = Sim_group.fresh () in
    {
      keys =
        Array.init capacity (fun i ->
            Rt.atomic_packed ~streaming:true ~group:(group0 + (i / pairs_per_line)) 0);
      vals =
        Array.init capacity (fun i ->
            Rt.atomic_packed ~streaming:true ~group:(group0 + (i / pairs_per_line)) None);
      lock = OL.create ();
      cap = capacity;
      eager_search;
    }

  let check_key k = if k = 0 then invalid_arg "map: key must be non-zero"

  (* Figure 6(c): read a free version first, re-check it after reading the
     matched value — an atomic snapshot of the key/value pair without any
     locking. *)
  let search_paper t key =
    let b = B.create () in
    let rec restart () =
      let vn = OL.get_version_wait t.lock in
      let rec scan i =
        if i >= t.cap then None
        else if Rt.get t.keys.(i) = key then (
          let v = Rt.get t.vals.(i) in
          let vnc = OL.get_version t.lock in
          if OL.same_version vn vnc then v
          else (
            Rt.Probe.incr restarts;
            B.once b;
            restart ()))
        else scan (i + 1)
      in
      scan 0
    in
    restart ()

  (* §4.1's finer-grained alternative ("reading the version before line
     5" of Figure 6(c)): refresh the version before every key
     comparison, so only the final pair read needs to be covered by the
     check. Correct, but every slot probe now also touches the lock's
     cache line — exactly the stress the paper warns about. *)
  let search_eager t key =
    let b = B.create () in
    let rec restart () =
      let rec scan i =
        if i >= t.cap then None
        else
          let vn = OL.get_version_wait t.lock in
          if Rt.get t.keys.(i) = key then (
            let v = Rt.get t.vals.(i) in
            let vnc = OL.get_version t.lock in
            if OL.same_version vn vnc then v
            else (
              Rt.Probe.incr restarts;
              B.once b;
              restart ()))
          else scan (i + 1)
      in
      scan 0
    in
    restart ()

  let search t key =
    check_key key;
    if t.eager_search then search_eager t key else search_paper t key

  (* Figure 6(b): scan optimistically; only lock — with validation — when
     the insertion is feasible. *)
  let insert t key v =
    check_key key;
    let b = B.create () in
    let rec restart () =
      let vn = OL.get_version t.lock in
      let free = ref (-1) in
      let dup = ref false in
      (try
         for i = 0 to t.cap - 1 do
           let k = Rt.get t.keys.(i) in
           if k = key then (
             dup := true;
             raise_notrace Exit)
           else if k = 0 && !free < 0 then free := i
         done
       with Exit -> ());
      if !dup then false
      else if not (OL.trylock_version t.lock vn) then (
        Rt.Probe.incr restarts;
        B.once b;
        restart ())
      else
        let res =
          if !free >= 0 then (
            Rt.set t.vals.(!free) (Some v);
            Rt.set t.keys.(!free) key;
            true)
          else false
        in
        OL.unlock t.lock;
        res
    in
    restart ()

  (* Figure 6(a). *)
  let delete t key =
    check_key key;
    let b = B.create () in
    let rec restart () =
      let vn = OL.get_version t.lock in
      let rec scan i =
        if i >= t.cap then None
        else if Rt.get t.keys.(i) = key then
          if not (OL.trylock_version t.lock vn) then (
            Rt.Probe.incr restarts;
            B.once b;
            restart ())
          else (
            let v = Rt.get t.vals.(i) in
            Rt.set t.keys.(i) 0;
            Rt.set t.vals.(i) None;
            OL.unlock t.lock;
            v)
        else scan (i + 1)
      in
      scan 0
    in
    restart ()

  let size t =
    let n = ref 0 in
    for i = 0 to t.cap - 1 do
      if Rt.get t.keys.(i) <> 0 then incr n
    done;
    !n

  let fold t f acc =
    let acc = ref acc in
    for i = 0 to t.cap - 1 do
      let k = Rt.get t.keys.(i) in
      if k <> 0 then
        match Rt.get t.vals.(i) with
        | Some v -> acc := f k v !acc
        | None -> ()
    done;
    !acc

  let validate t =
    let seen = Hashtbl.create 16 in
    let ok = ref (not (OL.is_locked (OL.get_version t.lock))) in
    for i = 0 to t.cap - 1 do
      let k = Rt.get t.keys.(i) in
      if k <> 0 then (
        if Hashtbl.mem seen k then ok := false;
        Hashtbl.replace seen k ();
        if Rt.get t.vals.(i) = None then ok := false)
    done;
    !ok
end

module Optik_based (Rt : RT) = Optik_based_gen (Rt) (Optik.Versioned)
