(* Shared skip-list machinery: level geometry and the deterministic
   per-thread level generator. Levels follow the usual p = 1/2 geometric
   distribution, capped at [max_level] (supports the paper's largest
   experiment, 65536 elements, comfortably). The generator is a per-thread
   xorshift so that simulator runs are deterministic — and the state
   array is per-domain, so fleet worker domains draw independent,
   pristine sequences. *)

let max_level = 20

let seed_state i = (0x9E3779B9 * (i + 1)) lxor 0x2545F491

let skey : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.init 128 seed_state)

let reset_states () =
  let states = Domain.DLS.get skey in
  for i = 0 to Array.length states - 1 do
    states.(i) <- seed_state i
  done

let xorshift states i =
  let x = states.(i) in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  states.(i) <- x;
  x

(* Toplevel index in [0, max_level - 1]: count leading 1-bits of a random
   word (geometric, p = 1/2). *)
let random_toplevel tid =
  let x = xorshift (Domain.DLS.get skey) (tid land 127) in
  let rec count lvl x =
    if lvl >= max_level - 1 then max_level - 1
    else if x land 1 = 1 then count (lvl + 1) (x lsr 1)
    else lvl
  in
  count 0 x
