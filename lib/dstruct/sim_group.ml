(* Re-export of {!Rt.Group}: unique cache-line packing group ids. *)

let fresh = Rt.Group.fresh
let stride = Rt.Group.stride
