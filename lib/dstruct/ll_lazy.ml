(** Lazy concurrent list-based set (Heller et al., OPODIS '05) — "lazy" in
    Figure 9, with the optional node-caching optimization ("lazy-cache").

    Nodes carry a test-and-set lock (per the paper's methodology, §5) and
    a [marked] flag for logical deletion. Updates traverse optimistically,
    lock, and then {e validate} — the classic lock-then-validate structure
    whose overhead OPTIK eliminates. Insert locks only the predecessor;
    delete locks predecessor and victim, marks the victim (logical
    delete), then unlinks it (physical delete). Search is wait-free-style:
    traverse without synchronization and check the mark.

    Node caching follows §5.1: a thread's last-visited predecessor may
    serve as the next traversal's entry point. Validity here uses the
    [marked] flag (a marked entry node is dead); nodes are never recycled
    (QSBR + GC), so there is no ABA. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module Lock = Locks.Tas (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v node = {
    key : int;
    value : 'v;
    lock : Lock.t;
    marked : bool Rt.atomic;
    next : 'v node option Rt.atomic;
  }

  type 'v t = {
    head : 'v node;
    qsbr : 'v node Q.t;
    cache : 'v node option array option;
  }

  let name = "ll-lazy"

  let restarts = Rt.Probe.counter "ll-lazy.restarts"
  let cache_hits = Rt.Probe.counter "ll-lazy.cache-hits"
  let cache_tries = Rt.Probe.counter "ll-lazy.cache-tries"

  (* One node = one cache line (lock, mark and next co-located). *)
  let mk_node key value next =
    Rt.Probe.with_site "ll-lazy.node" (fun () ->
        let next = Rt.atomic next in
        {
          key;
          value;
          lock = Rt.atomic_with next false;
          marked = Rt.atomic_with next false;
          next;
        })

  let create ?cache:(use_cache = false) () =
    let tail = mk_node max_int (Obj.magic 0) None in
    let head = mk_node min_int (Obj.magic 0) (Some tail) in
    {
      head;
      qsbr = Q.create ();
      cache = (if use_cache then Some (Array.make 128 None) else None);
    }

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "ll: key out of range"

  let next_exn n =
    match Rt.get n.next with
    | Some n' -> n'
    | None -> invalid_arg "ll: traversed past the tail sentinel"

  let entry_point t key =
    match t.cache with
    | None -> t.head
    | Some cache -> (
        Rt.Probe.incr cache_tries;
        match cache.(Rt.tid ()) with
        | Some n when n.key < key && not (Rt.get n.marked) ->
            Rt.Probe.incr cache_hits;
            n
        | _ -> t.head)

  let cache_put t pred =
    match t.cache with
    | None -> ()
    | Some cache ->
        if not (Rt.get pred.marked) then cache.(Rt.tid ()) <- Some pred

  let search t key =
    check_key key;
    Q.op_begin t.qsbr;
    let cur = ref (entry_point t key) in
    while !cur.key < key do
      cur := next_exn !cur
    done;
    let res =
      if !cur.key = key && not (Rt.get !cur.marked) then Some !cur.value
      else None
    in
    Q.op_end t.qsbr;
    res

  let find t key =
    let pred = ref (entry_point t key) in
    let cur = ref (next_exn !pred) in
    while !cur.key < key do
      pred := !cur;
      cur := next_exn !cur
    done;
    (!pred, !cur)

  (* Insert validation (ASCYLIB-optimized): only the predecessor is
     locked; it must be unmarked and still point to [cur]. *)
  let validate_insert pred cur =
    (not (Rt.get pred.marked))
    && (match Rt.get pred.next with Some n -> n == cur | None -> false)

  let insert t key value =
    check_key key;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let pred, cur = find t key in
      if cur.key = key && not (Rt.get cur.marked) then (
        cache_put t pred;
        false)
      else (
        (* Key absent or logically deleted: lock, validate, link. A marked
           [cur] fails validation below ([pred.next] changes when the
           victim is unlinked) or, if not yet unlinked, forces restart. *)
        Lock.lock pred.lock;
        if
          validate_insert pred cur
          && not (cur.key = key (* re-check under lock *))
        then (
          Rt.set pred.next (Some (mk_node key value (Some cur)));
          Lock.unlock pred.lock;
          cache_put t pred;
          true)
        else (
          Lock.unlock pred.lock;
          Rt.Probe.incr restarts;
          B.once b;
          attempt ()))
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let validate_delete pred cur =
    (not (Rt.get pred.marked))
    && (not (Rt.get cur.marked))
    && (match Rt.get pred.next with Some n -> n == cur | None -> false)

  let delete t key =
    check_key key;
    Q.op_begin t.qsbr;
    let b = B.create () in
    let rec attempt () =
      let pred, cur = find t key in
      if cur.key <> key || Rt.get cur.marked then (
        cache_put t pred;
        None)
      else (
        Lock.lock pred.lock;
        Lock.lock cur.lock;
        if validate_delete pred cur then (
          Rt.set cur.marked true;
          Rt.set pred.next (Rt.get cur.next);
          Lock.unlock cur.lock;
          Lock.unlock pred.lock;
          Q.retire t.qsbr cur;
          cache_put t pred;
          Some cur.value)
        else (
          Lock.unlock cur.lock;
          Lock.unlock pred.lock;
          Rt.Probe.incr restarts;
          B.once b;
          attempt ()))
    in
    let res = attempt () in
    Q.op_end t.qsbr;
    res

  let size t =
    let n = ref 0 in
    let cur = ref (Rt.get t.head.next) in
    let rec go () =
      match !cur with
      | Some node when node.key < max_int ->
          if not (Rt.get node.marked) then incr n;
          cur := Rt.get node.next;
          go ()
      | _ -> ()
    in
    go ();
    !n

  let fold t f acc =
    let rec go acc = function
      | Some node when node.key < max_int ->
          let acc =
            if not (Rt.get node.marked) then f node.key node.value acc else acc
          in
          go acc (Rt.get node.next)
      | _ -> acc
    in
    go acc (Rt.get t.head.next)

  let validate t =
    let ok = ref true in
    let rec go node =
      match Rt.get node.next with
      | None -> if node.key <> max_int then ok := false
      | Some nxt ->
          if nxt.key <= node.key then ok := false;
          if nxt.key < max_int && Rt.get nxt.marked then ok := false;
          if Lock.is_locked node.lock then ok := false;
          go nxt
    in
    go t.head;
    !ok
end
