(** Concurrent stacks (§5.5 of the paper).

    The paper briefly redesigns the classic Treiber lock-free stack with
    OPTIK and reports that the two behave similarly — a single contended
    word (the top pointer / the OPTIK lock) bounds both. Both designs are
    here so the bench suite can reproduce that observation. *)

module type RT = Rt.Rt_intf.RT

module Backoff = Rt.Backoff

module Make (Rt : RT) = struct
  module B = Backoff.Make (Rt)
  module OL = Optik.Versioned (Rt)
  module Q = Mem.Qsbr.Make (Rt)

  type 'v node = { value : 'v; next : 'v node option }

  (** Treiber stack: push/pop are single CAS loops on the top pointer. *)
  module Treiber = struct
    type 'v t = { top : 'v node option Rt.atomic; qsbr : 'v node Q.t }

    let name = "stack-treiber"

    (* Wasted work: every failed CAS on [top] throws the prepared node
       (push) or the read top (pop) away and retries. *)
    let restarts = Rt.Probe.counter "stack-treiber.restarts"

    let create () =
      Rt.Probe.with_site "stack-treiber.top" (fun () ->
          { top = Rt.atomic None; qsbr = Q.create () })

    let push t v =
      Q.op_begin t.qsbr;
      let b = B.create () in
      let rec loop () =
        let cur = Rt.get t.top in
        let n = Some { value = v; next = cur } in
        if not (Rt.cas t.top cur n) then (
          Rt.Probe.incr restarts;
          B.once b;
          loop ())
      in
      loop ();
      Q.op_end t.qsbr

    let pop t =
      Q.op_begin t.qsbr;
      let b = B.create () in
      let rec loop () =
        let cur = Rt.get t.top in
        match cur with
        | None -> None
        | Some node ->
            if Rt.cas t.top cur node.next then (
              Q.retire t.qsbr node;
              Some node.value)
            else (
              Rt.Probe.incr restarts;
              B.once b;
              loop ())
      in
      let res = loop () in
      Q.op_end t.qsbr;
      res

    let size t =
      let rec go acc = function
        | None -> acc
        | Some n -> go (acc + 1) n.next
      in
      go 0 (Rt.get t.top)
  end

  (** OPTIK stack: the top pointer is a plain field protected by an OPTIK
      lock; push/pop read it optimistically and commit with a single
      [trylock_version]. *)
  module Optik_stack = struct
    type 'v t = {
      top : 'v node option Rt.atomic;
      lock : OL.t;
      qsbr : 'v node Q.t;
    }

    let name = "stack-optik"

    let restarts = Rt.Probe.counter "stack-optik.restarts"

    let create () =
      Rt.Probe.with_site "stack-optik.top" (fun () ->
          let top = Rt.atomic None in
          (* lock and top pointer share the struct's cache line, as in C *)
          { top; lock = Rt.atomic_with top 0; qsbr = Q.create () })

    let push t v =
      Q.op_begin t.qsbr;
      let b = B.create () in
      let rec loop () =
        let vn = OL.get_version t.lock in
        if OL.is_locked vn then (
          B.once b;
          loop ())
        else
          let cur = Rt.get t.top in
          if OL.trylock_version t.lock vn then (
            Rt.set t.top (Some { value = v; next = cur });
            OL.unlock t.lock)
          else (
            Rt.Probe.incr restarts;
            B.once b;
            loop ())
      in
      loop ();
      Q.op_end t.qsbr

    let pop t =
      Q.op_begin t.qsbr;
      let b = B.create () in
      let rec loop () =
        let vn = OL.get_version t.lock in
        if OL.is_locked vn then (
          B.once b;
          loop ())
        else
          match Rt.get t.top with
          | None ->
              (* Empty iff no push/pop committed since [vn]. *)
              if OL.same_version (OL.get_version t.lock) vn then None
              else (
                B.once b;
                loop ())
          | Some node ->
              if OL.trylock_version t.lock vn then (
                Rt.set t.top node.next;
                OL.unlock t.lock;
                Q.retire t.qsbr node;
                Some node.value)
              else (
                Rt.Probe.incr restarts;
                B.once b;
                loop ())
      in
      let res = loop () in
      Q.op_end t.qsbr;
      res

    let size t =
      let rec go acc = function
        | None -> acc
        | Some n -> go (acc + 1) n.next
      in
      go 0 (Rt.get t.top)
  end

  (** Elimination-backoff stack (§5.5 points to elimination [24] as the
      way to make stacks scale; this is the Hendler–Shavit–Yerushalmi
      construction on top of the Treiber stack).

      When the CAS on [top] fails, the operation visits a random slot of
      an {e elimination array} instead of just backing off: a push and a
      pop that meet there cancel out without ever touching [top]. Each
      slot is a single-word state machine driven by physical-identity
      CAS:

      {v
        Empty --push--> Offered v --pop--> Taken --offerer--> Empty
        Empty --pop--> Asking --push--> Given v --asker--> Empty
      v} *)
  module Elimination = struct
    type 'v slot_state =
      | Empty
      | Offered of 'v  (** a pusher waits with its value *)
      | Taken  (** a popper consumed the offer *)
      | Asking  (** a popper waits for a value *)
      | Given of 'v  (** a pusher satisfied the asker *)

    type 'v t = {
      top : 'v node option Rt.atomic;
      slots : 'v slot_state Rt.atomic array;
      qsbr : 'v node Q.t;
    }

    let name = "stack-elimination"

    let eliminated = Rt.Probe.counter "stack-elim.eliminated"

    (* A retry that neither the CAS nor the elimination layer absorbed. *)
    let restarts = Rt.Probe.counter "stack-elim.restarts"

    let default_slots = 4
    let spin_budget = 32

    let create ?(slots = default_slots) () =
      {
        top = Rt.Probe.with_site "stack-elim.top" (fun () -> Rt.atomic None);
        slots =
          Rt.Probe.with_site "stack-elim.slots" (fun () ->
              Array.init (max 1 slots) (fun _ -> Rt.atomic Empty));
        qsbr = Q.create ();
      }

    (* Pick a slot pseudo-randomly from the thread id and a counter. *)
    let slot_seq = Array.make 128 0

    let pick t =
      let tid = Rt.tid () land 127 in
      slot_seq.(tid) <- slot_seq.(tid) + 1;
      t.slots.(((tid * 31) + slot_seq.(tid)) mod Array.length t.slots)

    (* Try to eliminate a push against a waiting popper, or wait briefly
       for a popper to take our offer. Returns whether the push is done. *)
    let try_eliminate_push t v =
      let slot = pick t in
      let cur = Rt.get slot in
      match cur with
      | Asking ->
          (* a popper is waiting: hand the value over *)
          Rt.cas slot cur (Given v) && (Rt.Probe.incr eliminated; true)
      | Empty ->
          let offer = Offered v in
          if not (Rt.cas slot cur offer) then false
          else
            let rec wait n =
              let now = Rt.get slot in
              if now == offer then
                if n = 0 then
                  (* timeout: withdraw, unless a popper races us *)
                  if Rt.cas slot offer Empty then false
                  else (
                    (* withdrawn too late: the popper took it *)
                    Rt.set slot Empty;
                    Rt.Probe.incr eliminated;
                    true)
                else (
                  Rt.pause ();
                  wait (n - 1))
              else (
                (* state advanced: must be [Taken] *)
                Rt.set slot Empty;
                Rt.Probe.incr eliminated;
                true)
            in
            wait spin_budget
      | _ -> false

    let try_eliminate_pop t =
      let slot = pick t in
      let cur = Rt.get slot in
      match cur with
      | Offered v ->
          if Rt.cas slot cur Taken then (
            Rt.Probe.incr eliminated;
            Some v)
          else None
      | Empty ->
          if not (Rt.cas slot cur Asking) then None
          else
            let rec wait n =
              let now = Rt.get slot in
              match now with
              | Given v ->
                  Rt.set slot Empty;
                  Rt.Probe.incr eliminated;
                  Some v
              | _ ->
                  if n = 0 then
                    if Rt.cas slot now Empty then None
                    else
                      (* a pusher slipped in a value as we timed out *)
                      (match Rt.get slot with
                      | Given v ->
                          Rt.set slot Empty;
                          Rt.Probe.incr eliminated;
                          Some v
                      | _ -> None)
                  else (
                    Rt.pause ();
                    wait (n - 1))
            in
            wait spin_budget
      | _ -> None

    let push t v =
      Q.op_begin t.qsbr;
      let rec loop () =
        let cur = Rt.get t.top in
        let n = Some { value = v; next = cur } in
        if not (Rt.cas t.top cur n) then
          if try_eliminate_push t v then ()
          else (
            Rt.Probe.incr restarts;
            loop ())
      in
      loop ();
      Q.op_end t.qsbr

    let pop t =
      Q.op_begin t.qsbr;
      let rec loop () =
        let cur = Rt.get t.top in
        match cur with
        | None -> None
        | Some node ->
            if Rt.cas t.top cur node.next then (
              Q.retire t.qsbr node;
              Some node.value)
            else (
              match try_eliminate_pop t with
              | Some v -> Some v
              | None ->
                  Rt.Probe.incr restarts;
                  loop ())
      in
      let res = loop () in
      Q.op_end t.qsbr;
      res

    let size t =
      let rec go acc = function
        | None -> acc
        | Some n -> go (acc + 1) n.next
      in
      go 0 (Rt.get t.top)
  end
end
